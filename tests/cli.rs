//! End-to-end tests of the `cisgraph` command-line binary: real process,
//! real files, real exit codes.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cisgraph"))
}

fn write_demo_files() -> (std::path::PathBuf, std::path::PathBuf) {
    let dir = std::env::temp_dir();
    let graph = dir.join(format!("cisgraph_cli_graph_{}.txt", std::process::id()));
    let updates = dir.join(format!("cisgraph_cli_updates_{}.txt", std::process::id()));
    let mut f = std::fs::File::create(&graph).unwrap();
    // 0 -> 1 -> 2 -> 3 chain plus a slow direct edge.
    writeln!(f, "# demo\n0 1 1\n1 2 1\n2 3 1\n0 3 9").unwrap();
    let mut f = std::fs::File::create(&updates).unwrap();
    // Batch 1: a shortcut. Batch 2: break the chain.
    writeln!(f, "+ 0 3 2\n- 1 2 1").unwrap();
    (graph, updates)
}

#[test]
fn answers_and_verifies_end_to_end() {
    let (graph, updates) = write_demo_files();
    let out = bin()
        .args([
            "--graph",
            graph.to_str().unwrap(),
            "--updates",
            updates.to_str().unwrap(),
            "--source",
            "0",
            "--dest",
            "3",
            "--batch",
            "1",
            "--verify",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("CISGraph-O Q(v0 -> v3) = 3"),
        "stdout: {stdout}"
    );
    // Shortcut improves 3 -> 2; breaking the chain keeps the shortcut.
    assert!(
        stdout.contains("batch    1: Q(v0 -> v3) = 2"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("batch    2: Q(v0 -> v3) = 2"),
        "stdout: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("verified against full recomputation"),
        "stderr: {stderr}"
    );
    std::fs::remove_file(graph).ok();
    std::fs::remove_file(updates).ok();
}

#[test]
fn accelerator_engine_reports_simulated_time() {
    let (graph, updates) = write_demo_files();
    let out = bin()
        .args([
            "--graph",
            graph.to_str().unwrap(),
            "--updates",
            updates.to_str().unwrap(),
            "--source",
            "0",
            "--dest",
            "3",
            "--engine",
            "accel",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("simulated"), "stdout: {stdout}");
    std::fs::remove_file(graph).ok();
    std::fs::remove_file(updates).ok();
}

#[test]
fn usage_errors_exit_2() {
    let out = bin()
        .args(["--graph", "nope.txt"])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "missing --source/--dest is a usage error"
    );

    let out = bin()
        .args([
            "--graph", "x", "--source", "0", "--dest", "1", "--algo", "bogus",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown algorithm is a usage error"
    );
}

#[test]
fn missing_file_exits_1() {
    let out = bin()
        .args([
            "--graph",
            "/definitely/not/here.txt",
            "--source",
            "0",
            "--dest",
            "1",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}
