//! Workspace-level integration: every engine and the accelerator agree on
//! the answers of realistic streaming workloads built with the dataset
//! generators, across multiple batches and all five algorithms.

use cisgraph::prelude::*;
use cisgraph_datasets::queries::random_connected_pairs;

fn workload(scale: f64, adds: usize, dels: usize, seed: u64) -> (DynamicGraph, StreamingWorkload) {
    let dataset = registry::orkut_like();
    let edges = dataset.generate(scale, seed);
    let stream = StreamConfig::paper_default()
        .with_batch_size(adds, dels)
        .build(edges, seed + 1);
    let mut g = DynamicGraph::new(stream.num_vertices());
    for &(u, v, w) in stream.initial_edges() {
        g.insert_edge(u, v, w).expect("in bounds");
    }
    (g, stream)
}

fn check_all_engines<A: MonotonicAlgorithm>(seed: u64) {
    let (mut g, mut stream) = workload(0.0008, 120, 120, seed);
    let query = random_connected_pairs(&g, 1, seed + 7)[0];

    let mut cs = ColdStart::<A>::new(query);
    let mut sgraph = SGraph::<A>::new(&g, query, SGraphConfig { num_hubs: 8 });
    let mut pnp = Pnp::<A>::new(query);
    let mut ciso = CisGraphO::<A>::new(&g, query);
    let mut accel = CisGraphAccel::<A>::new(&g, query, AcceleratorConfig::date2025());

    for round in 0..3 {
        let Some(batch) = stream.next_batch() else {
            break;
        };
        g.apply_batch(&batch).expect("consistent batch");
        let expected = cs.process_batch(&g, &batch).answer;
        assert_eq!(
            sgraph.process_batch(&g, &batch).answer,
            expected,
            "{} SGraph, seed {seed} round {round}",
            A::NAME
        );
        assert_eq!(
            pnp.process_batch(&g, &batch).answer,
            expected,
            "{} PnP, seed {seed} round {round}",
            A::NAME
        );
        assert_eq!(
            ciso.process_batch(&g, &batch).answer,
            expected,
            "{} CISGraph-O, seed {seed} round {round}",
            A::NAME
        );
        assert_eq!(
            accel.process_batch(&g, &batch).answer,
            expected,
            "{} accel, seed {seed} round {round}",
            A::NAME
        );
    }
}

#[test]
fn ppsp_streaming_equivalence() {
    check_all_engines::<Ppsp>(1);
}

#[test]
fn ppwp_streaming_equivalence() {
    check_all_engines::<Ppwp>(2);
}

#[test]
fn ppnp_streaming_equivalence() {
    check_all_engines::<Ppnp>(3);
}

#[test]
fn viterbi_streaming_equivalence() {
    check_all_engines::<Viterbi>(4);
}

#[test]
fn reach_streaming_equivalence() {
    check_all_engines::<Reach>(5);
}

/// The accelerator's early answer (before the delayed-deletion drain) must
/// already equal the fully converged answer — the promotion loop makes the
/// early response exact.
#[test]
fn early_response_is_exact() {
    for seed in 0..4u64 {
        let (mut g, mut stream) = workload(0.0008, 150, 150, seed + 100);
        let query = random_connected_pairs(&g, 1, seed)[0];
        let mut accel = CisGraphAccel::<Ppsp>::new(&g, query, AcceleratorConfig::date2025());
        for _ in 0..2 {
            let Some(batch) = stream.next_batch() else {
                break;
            };
            g.apply_batch(&batch).expect("consistent batch");
            let report = accel.process_batch(&g, &batch);
            let mut counters = Counters::new();
            let fresh = solver::best_first::<Ppsp, _>(&g, query.source(), &mut counters);
            // report.answer was captured at the early-response point.
            assert_eq!(
                report.answer,
                fresh.state(query.destination()),
                "seed {seed}"
            );
        }
    }
}

/// Streaming through many batches never corrupts the incremental state:
/// after the last batch, every vertex state matches a cold solve.
#[test]
fn long_stream_state_fidelity() {
    let (mut g, mut stream) = workload(0.0008, 80, 80, 77);
    let query = random_connected_pairs(&g, 1, 9)[0];
    let mut ciso = CisGraphO::<Ppsp>::new(&g, query);
    for _ in 0..6 {
        let Some(batch) = stream.next_batch() else {
            break;
        };
        g.apply_batch(&batch).expect("consistent batch");
        ciso.process_batch(&g, &batch);
    }
    let mut counters = Counters::new();
    let fresh = solver::best_first::<Ppsp, _>(&g, query.source(), &mut counters);
    for i in 0..g.num_vertices() {
        let v = VertexId::from_index(i);
        assert_eq!(ciso.result().state(v), fresh.state(v), "state of v{i}");
    }
}
