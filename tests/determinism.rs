//! Reproducibility guarantees: identical seeds produce identical workloads,
//! identical functional results, and identical cycle-level reports — the
//! property that makes EXPERIMENTS.md numbers comparable across runs.

use cisgraph::prelude::*;
use cisgraph_datasets::queries::random_connected_pairs;

fn build(seed: u64) -> (DynamicGraph, Vec<EdgeUpdate>, PairQuery) {
    let edges = registry::orkut_like().generate(0.001, seed);
    let mut stream = StreamConfig::paper_default()
        .with_batch_size(150, 150)
        .build(edges, seed);
    let mut g = DynamicGraph::new(stream.num_vertices());
    for &(u, v, w) in stream.initial_edges() {
        g.insert_edge(u, v, w).unwrap();
    }
    let q = random_connected_pairs(&g, 1, seed)[0];
    let batch = stream.next_batch().unwrap();
    (g, batch, q)
}

#[test]
fn accelerator_reports_are_bit_identical_across_runs() {
    let run = || {
        let (mut g, batch, q) = build(77);
        let mut accel = CisGraphAccel::<Ppsp>::new(&g, q, AcceleratorConfig::date2025());
        g.apply_batch(&batch).unwrap();
        accel.process_batch(&g, &batch)
    };
    let a = run();
    let b = run();
    assert_eq!(
        a, b,
        "same seed must give the same cycles, stats, and answer"
    );
    assert!(a.total_cycles > 0);
}

#[test]
fn engine_counters_are_deterministic() {
    let run = || {
        let (mut g, batch, q) = build(31);
        let mut engine = CisGraphO::<Ppwp>::new(&g, q);
        g.apply_batch(&batch).unwrap();
        let r = engine.process_batch(&g, &batch);
        (r.answer, r.counters, r.classification)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_workloads() {
    let (_, batch_a, _) = build(1);
    let (_, batch_b, _) = build(2);
    assert_ne!(batch_a, batch_b);
}
