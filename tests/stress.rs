//! Opt-in stress test (run with `cargo test --test stress -- --ignored`):
//! a larger, longer streaming equivalence sweep across all five algorithms
//! and all three stand-in datasets.

use cisgraph::prelude::*;
use cisgraph_datasets::queries::random_connected_pairs;

fn stress_one<A: MonotonicAlgorithm>(dataset: &Dataset, seed: u64) {
    let edges = dataset.generate(0.005, seed);
    let mut stream = StreamConfig::paper_default()
        .with_batch_size(1000, 1000)
        .build(edges, seed + 1);
    let mut g = DynamicGraph::new(stream.num_vertices());
    for &(u, v, w) in stream.initial_edges() {
        g.insert_edge(u, v, w).unwrap();
    }
    let query = random_connected_pairs(&g, 1, seed + 2)[0];
    let mut ciso = CisGraphO::<A>::new(&g, query);
    let mut accel = CisGraphAccel::<A>::new(&g, query, AcceleratorConfig::date2025());

    for round in 0..5 {
        let Some(batch) = stream.next_batch() else {
            break;
        };
        g.apply_batch(&batch).unwrap();
        let a = ciso.process_batch(&g, &batch).answer;
        let b = accel.process_batch(&g, &batch).answer;
        let fresh = solver::best_first::<A, _>(&g, query.source(), &mut Counters::new());
        let expected = fresh.state(query.destination());
        assert_eq!(
            a,
            expected,
            "{} ciso {} round {round}",
            A::NAME,
            dataset.abbrev
        );
        assert_eq!(
            b,
            expected,
            "{} accel {} round {round}",
            A::NAME,
            dataset.abbrev
        );
    }
    // Final full-state fidelity.
    let fresh = solver::best_first::<A, _>(&g, query.source(), &mut Counters::new());
    for i in 0..g.num_vertices() {
        let v = VertexId::from_index(i);
        assert_eq!(
            ciso.result().state(v),
            fresh.state(v),
            "{} ciso state v{i}",
            A::NAME
        );
        assert_eq!(
            accel.result().state(v),
            fresh.state(v),
            "{} accel state v{i}",
            A::NAME
        );
    }
}

#[test]
#[ignore = "stress sweep; run explicitly with --ignored"]
fn stress_all_algorithms_all_datasets() {
    for dataset in registry::all() {
        stress_one::<Ppsp>(&dataset, 41);
        stress_one::<Ppwp>(&dataset, 42);
        stress_one::<Ppnp>(&dataset, 43);
        stress_one::<Viterbi>(&dataset, 44);
        stress_one::<Reach>(&dataset, 45);
    }
}
