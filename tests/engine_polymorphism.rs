//! Every engine — including the cycle-level accelerator — is usable through
//! the common `StreamingEngine` trait, statically and as a trait object.

use cisgraph::prelude::*;

fn build() -> (DynamicGraph, PairQuery, Vec<EdgeUpdate>) {
    let edges = registry::livejournal_like().generate(0.0005, 23);
    let mut stream = StreamConfig::paper_default()
        .with_batch_size(80, 80)
        .build(edges, 23);
    let mut g = DynamicGraph::new(stream.num_vertices());
    for &(u, v, w) in stream.initial_edges() {
        g.insert_edge(u, v, w).unwrap();
    }
    let q = cisgraph::datasets::queries::random_connected_pairs(&g, 1, 5)[0];
    let batch = stream.next_batch().unwrap();
    (g, q, batch)
}

#[test]
fn all_engines_behind_one_trait_object() {
    let (mut g, q, batch) = build();
    let mut engines: Vec<Box<dyn StreamingEngine<Ppsp>>> = vec![
        Box::new(ColdStart::<Ppsp>::new(q)),
        Box::new(Pnp::<Ppsp>::new(q)),
        Box::new(SGraph::<Ppsp>::new(&g, q, SGraphConfig { num_hubs: 4 })),
        Box::new(CisGraphO::<Ppsp>::new(&g, q)),
        Box::new(cisgraph::engines::Coalescing::<Ppsp>::new(&g, q)),
        Box::new(CisGraphAccel::<Ppsp>::new(
            &g,
            q,
            AcceleratorConfig::date2025(),
        )),
    ];
    g.apply_batch(&batch).unwrap();
    let reports: Vec<BatchReport> = engines
        .iter_mut()
        .map(|e| e.process_batch(&g, &batch))
        .collect();

    // All six agree on the answer.
    let expected = reports[0].answer;
    for (engine, report) in engines.iter().zip(&reports) {
        assert_eq!(report.answer, expected, "{} diverged", engine.name());
        assert_eq!(
            engine.answer(),
            expected,
            "{} answer() diverged",
            engine.name()
        );
    }

    // Names are the paper's labels.
    let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
    assert_eq!(
        names,
        vec![
            "CS",
            "PnP",
            "SGraph",
            "CISGraph-O",
            "Coalescing",
            "CISGraph"
        ]
    );
}

#[test]
fn accelerator_reports_simulated_durations_through_the_trait() {
    let (mut g, q, batch) = build();
    let mut accel: Box<dyn StreamingEngine<Ppsp>> = Box::new(CisGraphAccel::<Ppsp>::new(
        &g,
        q,
        AcceleratorConfig::date2025(),
    ));
    g.apply_batch(&batch).unwrap();
    let report = accel.process_batch(&g, &batch);
    assert!(report.response_time <= report.total_time);
    assert!(report.classification.is_some());
    // Simulated times at 1 GHz: sub-millisecond for this tiny batch.
    assert!(report.total_time.as_secs_f64() < 0.1);
}
