//! The facade crate exposes the full public API: everything a downstream
//! user needs is reachable through `cisgraph::...` and the prelude.

use cisgraph::prelude::*;

#[test]
fn prelude_covers_the_quickstart_flow() {
    let mut g = DynamicGraph::new(3);
    g.apply(EdgeUpdate::insert(
        VertexId::new(0),
        VertexId::new(1),
        Weight::new(1.5).unwrap(),
    ))
    .unwrap();
    g.apply(EdgeUpdate::insert(
        VertexId::new(1),
        VertexId::new(2),
        Weight::new(2.5).unwrap(),
    ))
    .unwrap();

    let q = PairQuery::new(VertexId::new(0), VertexId::new(2)).unwrap();
    let mut engine = CisGraphO::<Ppsp>::new(&g, q);
    assert_eq!(engine.answer().get(), 4.0);

    let batch = vec![EdgeUpdate::insert(
        VertexId::new(0),
        VertexId::new(2),
        Weight::new(3.0).unwrap(),
    )];
    g.apply_batch(&batch).unwrap();
    assert_eq!(engine.process_batch(&g, &batch).answer.get(), 3.0);
}

#[test]
fn module_reexports_are_reachable() {
    // One symbol per re-exported crate proves the wiring.
    let _ = cisgraph::types::VertexId::new(0);
    let _ = cisgraph::graph::DynamicGraph::new(1);
    let _ = cisgraph::datasets::registry::orkut_like();
    let _ = cisgraph::algo::AlgorithmKind::ALL;
    let _ = cisgraph::engines::SGraphConfig::paper_default();
    let _ = cisgraph::sim::DramConfig::ddr4_3200();
    let _ = cisgraph::core::AcceleratorConfig::date2025();
    let _ = cisgraph::core::CycleMilestones::default();
    fn _multi_query_types_exist(m: cisgraph::core::MultiQueryAccel<Ppsp>) -> usize {
        m.queries().len()
    }
}

#[test]
fn all_five_algorithms_are_usable_through_the_facade() {
    let mut g = DynamicGraph::new(2);
    g.apply(EdgeUpdate::insert(
        VertexId::new(0),
        VertexId::new(1),
        Weight::new(2.0).unwrap(),
    ))
    .unwrap();
    let q = PairQuery::new(VertexId::new(0), VertexId::new(1)).unwrap();

    assert_eq!(CisGraphO::<Ppsp>::new(&g, q).answer().get(), 2.0);
    assert_eq!(CisGraphO::<Ppwp>::new(&g, q).answer().get(), 2.0);
    assert_eq!(CisGraphO::<Ppnp>::new(&g, q).answer().get(), 2.0);
    assert_eq!(CisGraphO::<Viterbi>::new(&g, q).answer().get(), 0.5);
    assert_eq!(CisGraphO::<Reach>::new(&g, q).answer(), State::ONE);
}

#[test]
fn accelerator_through_the_facade() {
    let mut g = DynamicGraph::new(2);
    g.apply(EdgeUpdate::insert(
        VertexId::new(0),
        VertexId::new(1),
        Weight::new(2.0).unwrap(),
    ))
    .unwrap();
    let q = PairQuery::new(VertexId::new(0), VertexId::new(1)).unwrap();
    let mut accel = CisGraphAccel::<Ppsp>::new(&g, q, AcceleratorConfig::date2025());
    let report = accel.process_batch(&g, &[]);
    assert_eq!(report.answer.get(), 2.0);
}
