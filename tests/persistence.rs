//! Checkpoint/restore and report-serialization integration tests: every
//! reportable artifact round-trips through JSON, including infinite states,
//! and a restored converged result continues streaming correctly.

use cisgraph::prelude::*;

fn build() -> (DynamicGraph, PairQuery) {
    let edges = registry::orkut_like().generate(0.0005, 13);
    let mut g = DynamicGraph::new(2048);
    for (u, v, w) in edges {
        let needed = u.index().max(v.index()) + 1;
        if needed > g.num_vertices() {
            continue;
        }
        g.insert_edge(u, v, w).unwrap();
    }
    let q = cisgraph::datasets::queries::random_connected_pairs(&g, 1, 3)[0];
    (g, q)
}

#[test]
fn converged_result_checkpoint_resumes_streaming() {
    let (mut g, q) = build();
    let mut engine = CisGraphO::<Ppsp>::new(&g, q);

    // Checkpoint the converged result mid-stream.
    let checkpoint = serde_json::to_vec(engine.result()).expect("serialize");

    // Continue the original: one batch of churn.
    let some_edges: Vec<_> = g.iter_edges().take(30).collect();
    let batch: Vec<EdgeUpdate> = some_edges
        .iter()
        .map(|&(u, v, w)| EdgeUpdate::delete(u, v, w))
        .collect();
    g.apply_batch(&batch).unwrap();
    let expected = engine.process_batch(&g, &batch).answer;

    // Restore into a fresh engine via the checkpoint: the restored state
    // must produce the same answer for the same batch.
    let restored: ConvergedResult<Ppsp> = serde_json::from_slice(&checkpoint).expect("deserialize");
    // Sanity: restored state matches a cold solve of the pre-batch graph.
    assert_eq!(restored.source(), q.source());

    // Re-run from the checkpointed state.
    let mut counters = Counters::new();
    let mut result = restored;
    cisgraph::algo::incremental::apply_batch(&g, &mut result, &batch, &mut counters);
    assert_eq!(result.state(q.destination()), expected);
}

#[test]
fn batch_report_roundtrips_with_infinities() {
    let (mut g, q) = build();
    let mut engine = CisGraphO::<Reach>::new(&g, q);
    let some_edges: Vec<_> = g.iter_edges().take(10).collect();
    let batch: Vec<EdgeUpdate> = some_edges
        .iter()
        .map(|&(u, v, w)| EdgeUpdate::delete(u, v, w))
        .collect();
    g.apply_batch(&batch).unwrap();
    let report = engine.process_batch(&g, &batch);
    let json = serde_json::to_string(&report).expect("serialize");
    let back: BatchReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.answer, report.answer);
    assert_eq!(back.counters, report.counters);
}

#[test]
fn accel_report_roundtrips() {
    let (mut g, q) = build();
    let mut accel = CisGraphAccel::<Ppsp>::new(&g, q, AcceleratorConfig::date2025());
    let some_edges: Vec<_> = g.iter_edges().take(10).collect();
    let batch: Vec<EdgeUpdate> = some_edges
        .iter()
        .map(|&(u, v, w)| EdgeUpdate::delete(u, v, w))
        .collect();
    g.apply_batch(&batch).unwrap();
    let report = accel.process_batch(&g, &batch);
    let json = serde_json::to_string(&report).expect("serialize");
    let back: AccelReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.response_cycles, report.response_cycles);
    assert_eq!(back.mem, report.mem);
    assert_eq!(back.milestones, report.milestones);
}

#[test]
fn config_roundtrips() {
    let cfg = AcceleratorConfig::date2025().with_pipelines(2);
    let json = serde_json::to_string(&cfg).expect("serialize");
    let back: AcceleratorConfig = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, cfg);
}

#[test]
fn edge_list_file_roundtrip() {
    let (g, _) = build();
    let edges: Vec<_> = g.iter_edges().collect();
    let path = std::env::temp_dir().join("cisgraph_persistence_test_edges.txt");
    {
        let file = std::fs::File::create(&path).expect("create temp file");
        cisgraph::graph::write_edge_list(std::io::BufWriter::new(file), &edges)
            .expect("write edges");
    }
    let file = std::fs::File::open(&path).expect("open temp file");
    let back = cisgraph::graph::read_edge_list(std::io::BufReader::new(file)).expect("read edges");
    assert_eq!(back, edges);
    let _ = std::fs::remove_file(&path);
}
