//! Property test: over arbitrary random graphs and batches, every engine —
//! including the coalescing baseline and the accelerator — answers exactly
//! what a cold recomputation answers.

use cisgraph::prelude::*;
use proptest::prelude::*;

const N: u32 = 20;

fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec(
        (0..N, 0..N, 1..9u32).prop_filter("no self loops", |(u, v, _)| u != v),
        8..80,
    )
}

fn graph_from(triples: &[(u32, u32, u32)]) -> DynamicGraph {
    let mut g = DynamicGraph::new(N as usize);
    for &(u, v, w) in triples {
        g.insert_edge(
            VertexId::new(u),
            VertexId::new(v),
            Weight::new(f64::from(w)).unwrap(),
        )
        .unwrap();
    }
    g
}

fn batch_from(
    initial: &[(u32, u32, u32)],
    adds: &[(u32, u32, u32)],
    delete_every: usize,
) -> Vec<EdgeUpdate> {
    let mut batch: Vec<EdgeUpdate> = adds
        .iter()
        .map(|&(u, v, w)| {
            EdgeUpdate::insert(
                VertexId::new(u),
                VertexId::new(v),
                Weight::new(f64::from(w)).unwrap(),
            )
        })
        .collect();
    for (i, &(u, v, w)) in initial.iter().enumerate() {
        if i % delete_every == 0 {
            batch.push(EdgeUpdate::delete(
                VertexId::new(u),
                VertexId::new(v),
                Weight::new(f64::from(w)).unwrap(),
            ));
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_engines_agree_on_arbitrary_workloads(
        initial in edges_strategy(),
        adds in edges_strategy(),
        k in 1usize..4,
        s in 0..N,
        d in 0..N,
    ) {
        prop_assume!(s != d);
        let mut g = graph_from(&initial);
        let query = PairQuery::new(VertexId::new(s), VertexId::new(d)).unwrap();

        let mut engines: Vec<Box<dyn StreamingEngine<Ppsp>>> = vec![
            Box::new(ColdStart::<Ppsp>::new(query)),
            Box::new(Pnp::<Ppsp>::new(query)),
            Box::new(SGraph::<Ppsp>::new(&g, query, SGraphConfig { num_hubs: 3 })),
            Box::new(CisGraphO::<Ppsp>::new(&g, query)),
            Box::new(cisgraph::engines::Coalescing::<Ppsp>::new(&g, query)),
            Box::new(CisGraphAccel::<Ppsp>::new(&g, query, AcceleratorConfig::date2025())),
        ];

        let batch = batch_from(&initial, &adds, k);
        g.apply_batch(&batch).unwrap();
        let expected = solver::best_first::<Ppsp, _>(&g, query.source(), &mut Counters::new())
            .state(query.destination());
        for engine in &mut engines {
            let got = engine.process_batch(&g, &batch).answer;
            prop_assert_eq!(got, expected, "{} diverged", engine.name());
        }
    }
}
