//! Offline stub of `serde_json`.
//!
//! Renders the vendored serde stub's [`Content`](serde::Content) tree to JSON
//! text and parses JSON text back into it. Covers `to_string`,
//! `to_string_pretty`, `to_vec`, `from_str`, `from_slice`, [`Value`], and a
//! minimal [`json!`] macro — the surface this workspace uses.

use serde::{Content, Deserialize, Serialize};

pub use serde::Error;

/// JSON value — an alias for the serde stub's self-describing tree.
pub type Value = Content;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Fails on non-finite floating-point numbers, like real `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_content(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value to human-indented JSON.
///
/// # Errors
///
/// Fails on non-finite floating-point numbers.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_content(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
///
/// Fails on non-finite floating-point numbers.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch for `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = Parser::new(s).parse_document()?;
    T::from_content(&content)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// Fails on invalid UTF-8, malformed JSON, or a shape mismatch for `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(Error::custom)?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-like syntax (objects, arrays, expressions).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {
        $crate::Value::Map(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

// ------------------------------------------------------------------ emit

fn emit(c: &Content, indent: Option<usize>, level: usize, out: &mut String) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            // `{:?}` is the shortest round-trippable repr ("3.5", "1.0").
            out.push_str(&format!("{v:?}"));
        }
        Content::Str(s) => emit_str(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, level + 1, out);
                emit(item, indent, level + 1, out)?;
            }
            if !items.is_empty() {
                newline(indent, level, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, level + 1, out);
                emit_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(v, indent, level + 1, out)?;
            }
            if !entries.is_empty() {
                newline(indent, level, out);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Content, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::custom(format!(
                "trailing characters at byte {}",
                self.pos
            )));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek()? {
            b'n' => self.keyword("null", Content::Null),
            b't' => self.keyword("true", Content::Bool(true)),
            b'f' => self.keyword("false", Content::Bool(false)),
            b'"' => Ok(Content::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            _ => self.parse_number(),
        }
    }

    fn keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16).map_err(Error::custom)?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    let s = std::str::from_utf8(slice).map_err(Error::custom)?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?;
        if text.is_empty() {
            return Err(Error::custom(format!(
                "expected a JSON value at byte {start}"
            )));
        }
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>().map(Content::F64).map_err(Error::custom)
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(Error::custom)
                .and_then(|v| i64::try_from(v).map_err(Error::custom))
                .map(|v| Content::I64(-v))
        } else {
            text.parse::<u64>().map(Content::U64).map_err(Error::custom)
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}
