//! Offline stub of `bytes`.
//!
//! [`Bytes`] / [`BytesMut`] over a plain `Vec<u8>` with the [`Buf`] /
//! [`BufMut`] little-endian accessors this workspace's binary graph format
//! uses. No reference counting or zero-copy slicing — `freeze` moves the
//! buffer and reads advance a cursor.

/// Read access to a byte cursor, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies out `n` bytes, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

/// Write access to a growable byte buffer, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: bytes.to_vec(),
            pos: 0,
        }
    }

    /// Length of the unread remainder.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Copies out a sub-range of the unread bytes.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.as_slice()[range].to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Number of written bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Empties the buffer, keeping its capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends raw bytes (inherent, like the real crate's
    /// `BytesMut::extend_from_slice`, so callers need not import
    /// [`BufMut`]).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// The written bytes as a plain vector (stub-local helper).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}
