//! Offline stub of `rand` 0.8.
//!
//! Deterministic xoshiro256++-based [`SmallRng`] plus the slice of the `Rng`
//! API this workspace uses: `gen`, `gen_range` over (inclusive) ranges,
//! `SeedableRng::seed_from_u64`, and `seq::SliceRandom::shuffle`. Stream
//! values differ from real `rand`, but all workspace seeds only need to be
//! deterministic, not compatible.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a value from the standard distribution of `T`.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng` within this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive range in gen_range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// Standard-distribution sampling for `Rng::gen`.
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A small, fast, deterministic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as real rand does for seed_from_u64.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::SmallRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use crate::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}
