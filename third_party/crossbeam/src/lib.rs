//! Offline stub of `crossbeam`.
//!
//! Only [`thread::scope`] is provided (the one API this workspace uses),
//! implemented on top of `std::thread::scope`, keeping crossbeam's call shape:
//! the scope closure and each spawned closure receive a `&Scope`, `spawn`
//! returns a joinable handle, and `scope` returns a `Result`.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::thread::Result as ThreadResult;

    /// Handle for spawning threads tied to the scope's lifetime.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to join a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, yielding its result (or the
        /// panic payload).
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> ThreadResult<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope; the closure receives the scope
        /// so it can spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Unlike crossbeam (which collects child panics into the `Err` arm),
    /// this stub propagates unhandled child panics via `std::thread::scope`;
    /// the `Result` wrapper is kept for call-site compatibility and is
    /// always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
