//! Offline stub of `proptest`.
//!
//! Provides deterministic random-input property testing with the API surface
//! this workspace uses: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_filter`, range and tuple strategies,
//! `proptest::collection::vec`, `prop_oneof!`, `any::<T>()`,
//! `proptest::num::f64`, `prop_assume!`, and `prop_assert*!`.
//!
//! Differences from real proptest: no shrinking (failures report the original
//! inputs) and a fixed per-test seed derived from the test name, so runs are
//! reproducible across processes.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for a named test; the seed is a stable hash of
    /// the name so each test gets its own reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state }
    }

    /// Returns the next random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` / `prop_filter`.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Rejection (the runner draws a replacement case).
    pub fn reject<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Failure (the runner panics).
    pub fn fail<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
        }
    }
}

/// Result type of a single test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred` (regenerates, bounded).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.generate(rng)),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.reason
        )
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    gen: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// Uniform choice between type-erased strategies (see [`prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds from the given arms (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = u128::from(rng.next_u64()) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = u128::from(rng.next_u64()) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        *self.start() + (*self.end() - *self.start()) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// `Just`-style constant strategy.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Numeric strategies, mirroring `proptest::num`.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Normal (non-zero, non-subnormal, finite) doubles.
        pub struct NormalStrategy;

        /// Generates only normal doubles.
        pub const NORMAL: NormalStrategy = NormalStrategy;

        impl Strategy for NormalStrategy {
            type Value = f64;

            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }

        /// Strictly positive finite doubles.
        pub struct PositiveStrategy;

        /// Generates positive normal doubles.
        pub const POSITIVE: PositiveStrategy = PositiveStrategy;

        impl Strategy for PositiveStrategy {
            type Value = f64;

            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64()).abs();
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

/// Everything a property test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property-test functions. See the crate docs for the differences
/// from real proptest (deterministic seed, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                while __passed < __config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __passed += 1,
                        ::core::result::Result::Err(e) if e.is_reject() => {
                            __rejected += 1;
                            assert!(
                                __rejected < 10_000,
                                "too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        ::core::result::Result::Err(e) => {
                            panic!("proptest case {} failed: {}", __passed + 1, e)
                        }
                    }
                }
            }
        )*
    };
}

/// Rejects the current case (the runner draws a fresh one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}
