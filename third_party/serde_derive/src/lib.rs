//! Offline stub of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` stub's `Content` data model, without `syn`/`quote`: the
//! input `TokenStream` is walked by hand and the generated impl is built as a
//! string and re-parsed.
//!
//! Supported shapes (everything this workspace uses):
//! * named structs (with `#[serde(skip)]` fields and generics),
//! * newtype / tuple structs, unit structs,
//! * enums with unit, newtype, and struct variants (externally tagged),
//! * container attributes `transparent`, `untagged`, `try_from = "T"`,
//!   `into = "T"`, and `bound(...)` (which suppresses inferred bounds).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    untagged: bool,
    try_from: Option<String>,
    into: Option<String>,
    bound_present: bool,
}

struct Param {
    /// `"A"` for a type param, `"'a"` for a lifetime.
    name: String,
    /// Declared bounds, without the leading `:` (may be empty).
    bounds: String,
    is_type: bool,
}

struct Field {
    name: String,
    skip: bool,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    params: Vec<Param>,
    attrs: ContainerAttrs,
    body: Body,
}

/// Derives the stub `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let code = gen_serialize(&input);
    code.parse().unwrap_or_else(|e| {
        panic!("serde_derive stub produced invalid Serialize impl: {e}\n{code}")
    })
}

/// Derives the stub `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let code = gen_deserialize(&input);
    code.parse().unwrap_or_else(|e| {
        panic!("serde_derive stub produced invalid Deserialize impl: {e}\n{code}")
    })
}

// ---------------------------------------------------------------- parsing

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(id) if id.to_string() == s)
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_input(ts: TokenStream) -> Input {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0usize;
    let mut attrs = ContainerAttrs::default();

    // Leading attributes (doc comments, #[serde(...)], #[non_exhaustive], ...).
    while i + 1 < toks.len() && is_punct(&toks[i], '#') {
        if let TokenTree::Group(g) = &toks[i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                parse_container_attr(g.stream(), &mut attrs);
                i += 2;
                continue;
            }
        }
        break;
    }

    // Visibility.
    if i < toks.len() && is_ident(&toks[i], "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }

    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive stub: expected `struct` or `enum`, got {t}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive stub: expected type name, got {t}"),
    };
    i += 1;

    // Generic parameter list.
    let mut params = Vec::new();
    if i < toks.len() && is_punct(&toks[i], '<') {
        i += 1;
        let mut depth = 0usize;
        let mut cur: Vec<TokenTree> = Vec::new();
        while i < toks.len() {
            let t = &toks[i];
            if is_punct(t, '<') {
                depth += 1;
                cur.push(t.clone());
            } else if is_punct(t, '>') {
                if depth == 0 {
                    if !cur.is_empty() {
                        params.push(parse_param(&cur));
                    }
                    i += 1;
                    break;
                }
                depth -= 1;
                cur.push(t.clone());
            } else if is_punct(t, ',') && depth == 0 {
                if !cur.is_empty() {
                    params.push(parse_param(&cur));
                }
                cur = Vec::new();
            } else {
                cur.push(t.clone());
            }
            i += 1;
        }
    }

    if i < toks.len() && is_ident(&toks[i], "where") {
        panic!("serde_derive stub: `where` clauses are not supported");
    }

    let body = if kind == "enum" {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            t => panic!("serde_derive stub: expected enum body, got {t}"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            Some(t) if is_punct(t, ';') => Body::Unit,
            None => Body::Unit,
            Some(t) => panic!("serde_derive stub: expected struct body, got {t}"),
        }
    };

    Input {
        name,
        params,
        attrs,
        body,
    }
}

fn parse_param(toks: &[TokenTree]) -> Param {
    if is_punct(&toks[0], '\'') {
        let id = match toks.get(1) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => panic!("serde_derive stub: malformed lifetime parameter"),
        };
        let bounds = if toks.len() > 2 && is_punct(&toks[2], ':') {
            join_tokens(&toks[3..])
        } else {
            String::new()
        };
        return Param {
            name: format!("'{id}"),
            bounds,
            is_type: false,
        };
    }
    if is_ident(&toks[0], "const") {
        panic!("serde_derive stub: const generics are not supported");
    }
    let name = match &toks[0] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive stub: malformed type parameter {t}"),
    };
    let bounds = if toks.len() > 1 && is_punct(&toks[1], ':') {
        join_tokens(&toks[2..])
    } else {
        String::new()
    };
    Param {
        name,
        bounds,
        is_type: true,
    }
}

fn join_tokens(toks: &[TokenTree]) -> String {
    toks.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_container_attr(stream: TokenStream, attrs: &mut ContainerAttrs) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() || !is_ident(&toks[0], "serde") {
        return;
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    for item in split_top_level(inner) {
        if item.is_empty() {
            continue;
        }
        let key = match &item[0] {
            TokenTree::Ident(id) => id.to_string(),
            _ => continue,
        };
        match key.as_str() {
            "transparent" => attrs.transparent = true,
            "untagged" => attrs.untagged = true,
            "bound" => attrs.bound_present = true,
            "try_from" | "into" => {
                let val = item
                    .iter()
                    .find_map(|t| match t {
                        TokenTree::Literal(l) => Some(strip_quotes(&l.to_string())),
                        _ => None,
                    })
                    .unwrap_or_default();
                if key == "try_from" {
                    attrs.try_from = Some(val);
                } else {
                    attrs.into = Some(val);
                }
            }
            _ => {}
        }
    }
}

/// Splits a token stream at top-level commas (angle brackets tracked by hand;
/// `(...)`/`[...]`/`{...}` are already single `Group` tokens).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for t in stream {
        if is_punct(&t, '<') {
            depth += 1;
        } else if is_punct(&t, '>') {
            depth -= 1;
        } else if is_punct(&t, ',') && depth == 0 {
            out.push(std::mem::take(&mut cur));
            continue;
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn field_attr_skips(stream: TokenStream) -> bool {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() || !is_ident(&toks[0], "serde") {
        return false;
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return false,
    };
    inner.into_iter().any(|t| {
        matches!(
            &t,
            TokenTree::Ident(id)
                if matches!(id.to_string().as_str(), "skip" | "skip_serializing" | "skip_deserializing")
        )
    })
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut fields = Vec::new();
    while i < toks.len() {
        let mut skip = false;
        while i + 1 < toks.len() && is_punct(&toks[i], '#') {
            if let TokenTree::Group(g) = &toks[i + 1] {
                if field_attr_skips(g.stream()) {
                    skip = true;
                }
            }
            i += 2;
        }
        if i < toks.len() && is_ident(&toks[i], "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive stub: expected field name, got {t}"),
        };
        i += 1;
        // Skip `:` and the type, up to the next top-level comma.
        debug_assert!(is_punct(&toks[i], ':'));
        i += 1;
        let mut depth = 0i32;
        while i < toks.len() {
            let t = &toks[i];
            if is_punct(t, '<') {
                depth += 1;
            } else if is_punct(t, '>') {
                depth -= 1;
            } else if is_punct(t, ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut variants = Vec::new();
    while i < toks.len() {
        while i + 1 < toks.len() && is_punct(&toks[i], '#') {
            i += 2; // variant attributes (doc comments) are irrelevant here
        }
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive stub: expected variant name, got {t}"),
        };
        i += 1;
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantBody::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantBody::Named(
                    parse_named_fields(g.stream())
                        .into_iter()
                        .map(|f| f.name)
                        .collect(),
                )
            }
            _ => VariantBody::Unit,
        };
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

// ---------------------------------------------------------------- codegen

const RESULT: &str = "::core::result::Result";

/// Builds `impl<...> ::serde::Trait for Name<...>`, repeating declared bounds
/// and (unless `#[serde(bound(...))]` was given) adding `extra_bound` to each
/// type parameter.
fn impl_header(input: &Input, trait_name: &str, extra_bound: &str) -> String {
    if input.params.is_empty() {
        return format!("impl ::serde::{} for {}", trait_name, input.name);
    }
    let impl_params: Vec<String> = input
        .params
        .iter()
        .map(|p| {
            let mut bounds = p.bounds.clone();
            if p.is_type && !input.attrs.bound_present {
                if bounds.is_empty() {
                    bounds = extra_bound.to_string();
                } else {
                    bounds = format!("{bounds} + {extra_bound}");
                }
            }
            if bounds.is_empty() {
                p.name.clone()
            } else {
                format!("{}: {}", p.name, bounds)
            }
        })
        .collect();
    let ty_params: Vec<String> = input.params.iter().map(|p| p.name.clone()).collect();
    format!(
        "impl<{}> ::serde::{} for {}<{}>",
        impl_params.join(", "),
        trait_name,
        input.name,
        ty_params.join(", ")
    )
}

fn gen_serialize(input: &Input) -> String {
    let header = impl_header(input, "Serialize", "::serde::Serialize");
    let name = &input.name;
    let body = if let Some(into_ty) = &input.attrs.into {
        format!(
            "let __repr: {into_ty} = \
             ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_content(&__repr)"
        )
    } else {
        match &input.body {
            Body::Unit => "::serde::Content::Null".to_string(),
            Body::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
            _ if input.attrs.transparent => "::serde::Serialize::to_content(&self.0)".to_string(),
            Body::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                    .collect();
                format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
            }
            Body::Named(fields) => gen_named_ser(fields, "self."),
            Body::Enum(variants) => gen_enum_ser(name, variants, input.attrs.untagged),
        }
    };
    format!(
        "#[automatically_derived]\n{header} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

fn gen_named_ser(fields: &[Field], access: &str) -> String {
    let mut out = String::from(
        "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields.iter().filter(|f| !f.skip) {
        let fname = &f.name;
        out.push_str(&format!(
            "__m.push((::std::string::String::from(\"{fname}\"), \
             ::serde::Serialize::to_content(&{access}{fname})));\n"
        ));
    }
    out.push_str("::serde::Content::Map(__m)");
    out
}

fn gen_enum_ser(name: &str, variants: &[Variant], untagged: bool) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let arm = match &v.body {
            VariantBody::Unit => {
                if untagged {
                    format!("{name}::{vname} => ::serde::Content::Null,\n")
                } else {
                    format!(
                        "{name}::{vname} => \
                         ::serde::Content::Str(::std::string::String::from(\"{vname}\")),\n"
                    )
                }
            }
            VariantBody::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_content(__f0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_content({b})"))
                        .collect();
                    format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
                };
                let payload = if untagged {
                    inner
                } else {
                    format!(
                        "::serde::Content::Map(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), {inner})])"
                    )
                };
                format!("{name}::{vname}({}) => {payload},\n", binders.join(", "))
            }
            VariantBody::Named(fields) => {
                let mut inner = String::from(
                    "{ let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
                     ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    inner.push_str(&format!(
                        "__m.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content({f})));\n"
                    ));
                }
                inner.push_str("::serde::Content::Map(__m) }");
                let payload = if untagged {
                    inner
                } else {
                    format!(
                        "::serde::Content::Map(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), {inner})])"
                    )
                };
                format!(
                    "{name}::{vname} {{ {} }} => {payload},\n",
                    fields.join(", ")
                )
            }
        };
        arms.push_str(&arm);
    }
    format!("match self {{\n{arms}}}")
}

fn gen_deserialize(input: &Input) -> String {
    let header = impl_header(input, "Deserialize", "::serde::Deserialize");
    let name = &input.name;
    let body = if let Some(try_ty) = &input.attrs.try_from {
        format!(
            "let __repr: {try_ty} = ::serde::Deserialize::from_content(__c)?;\n\
             ::core::convert::TryFrom::try_from(__repr).map_err(::serde::Error::custom)"
        )
    } else {
        match &input.body {
            Body::Unit => format!("{RESULT}::Ok({name})"),
            Body::Tuple(1) => {
                format!("{RESULT}::Ok({name}(::serde::Deserialize::from_content(__c)?))")
            }
            _ if input.attrs.transparent => {
                format!("{RESULT}::Ok({name}(::serde::Deserialize::from_content(__c)?))")
            }
            Body::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_content(&__s[{k}])?"))
                    .collect();
                format!(
                    "match __c {{\n\
                     ::serde::Content::Seq(__s) if __s.len() == {n} => \
                     {RESULT}::Ok({name}({items})),\n\
                     _ => {RESULT}::Err(::serde::Error::custom(\
                     \"expected a sequence of {n} elements for `{name}`\")),\n}}",
                    items = items.join(", ")
                )
            }
            Body::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        if f.skip {
                            format!("{}: ::core::default::Default::default()", f.name)
                        } else {
                            format!(
                                "{field}: ::serde::__req(__m, \"{field}\", \"{name}\")?",
                                field = f.name
                            )
                        }
                    })
                    .collect();
                format!(
                    "match __c {{\n\
                     ::serde::Content::Map(__m) => {RESULT}::Ok({name} {{ {inits} }}),\n\
                     _ => {RESULT}::Err(::serde::Error::custom(\"expected map for `{name}`\")),\n}}",
                    inits = inits.join(", ")
                )
            }
            Body::Enum(variants) => {
                if input.attrs.untagged {
                    gen_enum_de_untagged(name, variants)
                } else {
                    gen_enum_de_tagged(name, variants)
                }
            }
        }
    };
    format!(
        "#[automatically_derived]\n{header} {{\n\
         fn from_content(__c: &::serde::Content) -> {RESULT}<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

fn gen_enum_de_tagged(name: &str, variants: &[Variant]) -> String {
    let units: Vec<&Variant> = variants
        .iter()
        .filter(|v| matches!(v.body, VariantBody::Unit))
        .collect();
    let payloads: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.body, VariantBody::Unit))
        .collect();

    let mut out = String::from("match __c {\n");
    if !units.is_empty() {
        out.push_str("::serde::Content::Str(__s) => match __s.as_str() {\n");
        for v in &units {
            out.push_str(&format!(
                "\"{v}\" => {RESULT}::Ok({name}::{v}),\n",
                v = v.name
            ));
        }
        out.push_str(&format!(
            "__other => {RESULT}::Err(::serde::Error::custom(::std::format!(\
             \"unknown variant `{{__other}}` of enum `{name}`\"))),\n}},\n"
        ));
    }
    if !payloads.is_empty() {
        out.push_str(
            "::serde::Content::Map(__m) if __m.len() == 1 => {\n\
             let (__k, __v) = (&__m[0].0, &__m[0].1);\n\
             match __k.as_str() {\n",
        );
        for v in &payloads {
            let vname = &v.name;
            match &v.body {
                VariantBody::Tuple(1) => out.push_str(&format!(
                    "\"{vname}\" => {RESULT}::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_content(__v)?)),\n"
                )),
                VariantBody::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_content(&__s[{k}])?"))
                        .collect();
                    out.push_str(&format!(
                        "\"{vname}\" => match __v {{\n\
                         ::serde::Content::Seq(__s) if __s.len() == {n} => \
                         {RESULT}::Ok({name}::{vname}({items})),\n\
                         _ => {RESULT}::Err(::serde::Error::custom(\
                         \"expected a sequence for variant `{vname}`\")),\n}},\n",
                        items = items.join(", ")
                    ));
                }
                VariantBody::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::__req(__f, \"{f}\", \"{name}::{vname}\")?"))
                        .collect();
                    out.push_str(&format!(
                        "\"{vname}\" => match __v {{\n\
                         ::serde::Content::Map(__f) => \
                         {RESULT}::Ok({name}::{vname} {{ {inits} }}),\n\
                         _ => {RESULT}::Err(::serde::Error::custom(\
                         \"expected map for variant `{vname}`\")),\n}},\n",
                        inits = inits.join(", ")
                    ));
                }
                VariantBody::Unit => unreachable!("filtered above"),
            }
        }
        out.push_str(&format!(
            "__other => {RESULT}::Err(::serde::Error::custom(::std::format!(\
             \"unknown variant `{{__other}}` of enum `{name}`\"))),\n}}\n}},\n"
        ));
    }
    out.push_str(&format!(
        "_ => {RESULT}::Err(::serde::Error::custom(\
         \"unexpected shape for enum `{name}`\")),\n}}"
    ));
    out
}

fn gen_enum_de_untagged(name: &str, variants: &[Variant]) -> String {
    let mut out = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.body {
            VariantBody::Unit => out.push_str(&format!(
                "if ::core::matches!(__c, ::serde::Content::Null) {{\n\
                 return {RESULT}::Ok({name}::{vname});\n}}\n"
            )),
            VariantBody::Tuple(1) => out.push_str(&format!(
                "if let {RESULT}::Ok(__v) = ::serde::Deserialize::from_content(__c) {{\n\
                 return {RESULT}::Ok({name}::{vname}(__v));\n}}\n"
            )),
            VariantBody::Tuple(_) => {
                panic!("serde_derive stub: untagged multi-field tuple variants unsupported")
            }
            VariantBody::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::__req(__m, \"{f}\", \"{name}::{vname}\")?"))
                    .collect();
                out.push_str(&format!(
                    "if let ::serde::Content::Map(__m) = __c {{\n\
                     let __try = (|| -> {RESULT}<{name}, ::serde::Error> {{\n\
                     {RESULT}::Ok({name}::{vname} {{ {inits} }})\n}})();\n\
                     if let {RESULT}::Ok(__v) = __try {{\n\
                     return {RESULT}::Ok(__v);\n}}\n}}\n",
                    inits = inits.join(", ")
                ));
            }
        }
    }
    out.push_str(&format!(
        "{RESULT}::Err(::serde::Error::custom(\
         \"data did not match any variant of untagged enum `{name}`\"))"
    ));
    out
}
