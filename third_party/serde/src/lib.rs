//! Offline stub of `serde`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! this crate provides the small serde surface the workspace actually uses:
//! `Serialize`/`Deserialize` traits over a self-describing [`Content`] tree
//! (the moral equivalent of `serde_json::Value`), plus the derive macros
//! re-exported from the vendored `serde_derive`.
//!
//! The data model intentionally mirrors JSON: the companion `serde_json`
//! stub renders [`Content`] to JSON text and parses it back.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;
use std::marker::PhantomData;
use std::time::Duration;

/// Self-describing serialized value — the entire data model of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object (insertion-ordered).
    Map(Vec<(String, Content)>),
}

/// Serialization/deserialization error.
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Content`] tree.
    fn to_content(&self) -> Content;
}

/// A type that can reconstruct itself from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Content`] tree.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

/// Mirrors `serde::ser` for code that names the module path.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Mirrors `serde::de` for code that names the module path.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// Marker for deserializable types that borrow nothing (all of them here).
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Looks up a required field in a serialized map (used by derived impls).
///
/// # Errors
///
/// Returns an error naming the missing field and container type.
pub fn __req<T: Deserialize>(map: &[(String, Content)], key: &str, ty: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_content(v),
        None => Err(Error::custom(format!("missing field `{key}` in `{ty}`"))),
    }
}

// ------------------------------------------------------------- primitives

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = match *content {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 => v as u64,
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(v).map_err(Error::custom)
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = match *content {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v).map_err(Error::custom)?,
                    Content::F64(v) if v.fract() == 0.0 => v as i64,
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(v).map_err(Error::custom)
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match *content {
                    Content::F64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    ref other => Err(Error::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string; acceptable for the static registry metadata
    /// this workspace round-trips.
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::Seq(items) if items.len() == [$($idx),+].len() => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected tuple sequence, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_string(), Content::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Content::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(m) => {
                let secs: u64 = __req(m, "secs", "Duration")?;
                let nanos: u32 = __req(m, "nanos", "Duration")?;
                Ok(Duration::new(secs, nanos))
            }
            other => Err(Error::custom(format!(
                "expected duration map, got {other:?}"
            ))),
        }
    }
}

impl<T: ?Sized> Serialize for PhantomData<T> {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl<T: ?Sized> Deserialize for PhantomData<T> {
    fn from_content(_: &Content) -> Result<Self, Error> {
        Ok(PhantomData)
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

// ------------------------------------------------- Value-like conveniences

static NULL: Content = Content::Null;

impl std::ops::Index<&str> for Content {
    type Output = Content;

    /// Object field access; missing keys and non-objects index to `Null`,
    /// matching `serde_json::Value` semantics.
    fn index(&self, key: &str) -> &Content {
        match self {
            Content::Map(m) => m
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;

    fn index(&self, idx: usize) -> &Content {
        match self {
            Content::Seq(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_partial_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Content {
            #[allow(clippy::cast_lossless, clippy::cast_precision_loss)]
            fn eq(&self, other: &$t) -> bool {
                match *self {
                    Content::U64(v) => v as f64 == *other as f64,
                    Content::I64(v) => v as f64 == *other as f64,
                    Content::F64(v) => v == *other as f64,
                    _ => false,
                }
            }
        }
    )*};
}
impl_partial_eq_num!(u32, u64, usize, i32, i64, f64);

impl PartialEq<bool> for Content {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Content::Bool(b) if b == other)
    }
}

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Content::Str(s) if s == other)
    }
}

impl PartialEq<String> for Content {
    fn eq(&self, other: &String) -> bool {
        matches!(self, Content::Str(s) if s == other)
    }
}

macro_rules! impl_from_num {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl From<$t> for Content {
            fn from(v: $t) -> Content {
                Content::$variant(v as $cast)
            }
        }
    )*};
}
impl_from_num!(u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
               u64 => U64 as u64, usize => U64 as u64, f64 => F64 as f64);

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Content {
            fn from(v: $t) -> Content {
                let v = i64::from(v);
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
    )*};
}
impl_from_signed!(i8, i16, i32, i64);

impl From<bool> for Content {
    fn from(v: bool) -> Content {
        Content::Bool(v)
    }
}

impl From<&str> for Content {
    fn from(v: &str) -> Content {
        Content::Str(v.to_string())
    }
}

impl From<String> for Content {
    fn from(v: String) -> Content {
        Content::Str(v)
    }
}
