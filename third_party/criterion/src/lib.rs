//! Offline stub of `criterion`.
//!
//! Runs each registered benchmark a handful of times and prints the mean
//! wall-clock duration. No statistics, no HTML reports; `--quick` (and any
//! other harness flag) is tolerated. Enough for `cargo bench` smoke runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    iterations: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        Criterion {
            iterations: if quick { 1 } else { 10 },
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<N, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        N: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: self.iterations,
            total: Duration::ZERO,
            runs: 0,
        };
        f(&mut bencher);
        let mean = bencher
            .total
            .checked_div(bencher.runs.max(1))
            .unwrap_or_default();
        println!("  {name}: {mean:?} (mean of {} iters)", bencher.runs.max(1));
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; sampling is fixed in this stub.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for compatibility; measurement time is fixed in this stub.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a single named benchmark within the group.
    pub fn bench_function<N, F>(&mut self, name: N, f: F) -> &mut Self
    where
        N: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        self.criterion.bench_function(name, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares how many logical elements/bytes one iteration processes.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handle, mirroring `criterion::Bencher`.
pub struct Bencher {
    iterations: u32,
    total: Duration,
    runs: u32,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.runs += 1;
        }
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
